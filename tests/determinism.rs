//! Determinism acceptance suite for the `tm-sched` cooperative scheduler.
//!
//! Before the scheduler, the simulated processors were free-running OS
//! threads: lock-arrival order — and with it TSP's and Water's message
//! counts — varied run to run. These tests pin the property the rework
//! bought: **every run is a pure function of `(app, policy, nprocs, seed,
//! schedule mode)`**, down to the last byte of the emitted JSON.
//!
//! Layers covered, bottom-up: golden per-app message/byte counts at a fixed
//! seed (the previously nondeterministic apps), bit-identical `ClusterStats`
//! across back-to-back runs of every registered application, a seed sweep
//! showing interleavings may change but results stay verified, and
//! byte-identical machine documents from two consecutive engine and binary
//! runs.

use proptest::prelude::*;
use tdsm_core::SchedConfig;
use tm_apps::{checksums_match, AppConfig, AppId, Workload};
use tm_bench::{render, run_experiment, BenchArgs, Experiment, OutputFormat, RunnerOptions};

/// The fixed configuration of the golden tests: 4 processors, 4 KB units,
/// seeded schedule with this base seed.
const GOLDEN_SEED: u64 = 0x5eed;

fn golden_cfg() -> AppConfig {
    AppConfig::with_procs(4).sched(SchedConfig::seeded(GOLDEN_SEED))
}

/// TSP and Water are the lock-based applications whose counts were
/// nondeterministic before the scheduler; their exact communication
/// breakdown at a fixed seed is now a golden artifact. If a deliberate
/// protocol or scheduler change moves these numbers, update them in the same
/// commit and say why.
///
/// History: the lazy-diffing rework (PR 4) moved the execution times —
/// `diff_create_cost` is now charged on the responder's serve path at the
/// first request instead of at interval close, and unrequested diffs are
/// never charged at all — but left every message and byte count untouched,
/// exactly as the eager/lazy equivalence demands.
#[test]
fn golden_tsp_water_counts_at_fixed_seed() {
    let tsp = Workload::tiny(AppId::Tsp).run_parallel(&golden_cfg());
    let b = &tsp.breakdown;
    assert_eq!(
        (b.useful_messages, b.useless_messages, b.faults),
        (146, 24, 23),
        "TSP tiny message counts drifted: {b:?}"
    );
    assert_eq!(
        (
            b.useful_data,
            b.piggybacked_useless_data,
            b.useless_data_in_useless_msgs,
            b.total_wire_bytes
        ),
        (200, 340, 48, 10_124),
        "TSP tiny byte counts drifted"
    );
    assert_eq!(tsp.exec_time_ns, 24_765_981);
    assert_eq!(tsp.checksum, 234.0);

    let water = Workload::tiny(AppId::Water).run_parallel(&golden_cfg());
    let b = &water.breakdown;
    assert_eq!(
        (b.useful_messages, b.useless_messages, b.faults),
        (1_511, 298, 287),
        "Water tiny message counts drifted: {b:?}"
    );
    assert_eq!(
        (
            b.useful_data,
            b.piggybacked_useless_data,
            b.useless_data_in_useless_msgs,
            b.total_wire_bytes
        ),
        (17_152, 18_152, 20_496, 183_082),
        "Water tiny byte counts drifted"
    );
    assert_eq!(water.exec_time_ns, 159_749_780);
}

/// The diff-timing knob must not move a single message or byte: eager and
/// lazy runs of every registered application at a fixed seed exchange
/// identical write notices and diffs, so their whole communication breakdown
/// — counts, volumes, wire bytes, fault signature — and their per-processor
/// message counts agree exactly.  Only the execution times (where
/// `diff_create_cost` lands) may differ.
#[test]
fn eager_and_lazy_exchange_identical_messages_for_every_app() {
    use tdsm_core::DiffTiming;
    for w in Workload::tiny_suite() {
        let cfg = |timing| {
            AppConfig::with_procs(4)
                .sched(SchedConfig::seeded(GOLDEN_SEED))
                .diff_timing(timing)
        };
        let lazy = w.run_parallel(&cfg(DiffTiming::Lazy));
        let eager = w.run_parallel(&cfg(DiffTiming::Eager));

        let mut bl = lazy.breakdown.clone();
        let mut be = eager.breakdown.clone();
        // The one legitimate difference: where diff creation is charged.
        bl.exec_time_ns = 0;
        be.exec_time_ns = 0;
        assert_eq!(bl, be, "{} breakdown diverged across timings", w.size_label);

        for (l, e) in lazy.stats.per_proc.iter().zip(&eager.stats.per_proc) {
            assert_eq!(
                l.message_count(),
                e.message_count(),
                "{} P{} message count diverged",
                w.size_label,
                l.proc
            );
            assert_eq!(
                l.wire_bytes(),
                e.wire_bytes(),
                "{} P{} wire bytes diverged",
                w.size_label,
                l.proc
            );
        }

        // GC activity is a pure function of the notice flow, so it is
        // timing-independent too.
        assert_eq!(
            lazy.stats.gc_counters(),
            eager.stats.gc_counters(),
            "{} GC counters diverged",
            w.size_label
        );
        assert_eq!(lazy.checksum, eager.checksum);
    }
}

/// The machine-readable sweep documents of an eager and a lazy engine run
/// must agree on every message count and volume: render both to JSON, strip
/// the declared timing-dependent fields (`diff_timing` itself and the
/// execution times), and require byte identity.
#[test]
fn eager_and_lazy_sweeps_emit_identical_message_documents() {
    use tdsm_core::DiffTiming;
    let args = |timing| BenchArgs {
        nprocs: 2,
        scale: tm_bench::Scale::Tiny,
        diff_timing: timing,
        ..BenchArgs::defaults(2)
    };
    let opts = RunnerOptions { threads: 2 };
    let lazy = run_experiment(&Experiment::table1(&args(DiffTiming::Lazy)), &opts);
    let eager = run_experiment(&Experiment::table1(&args(DiffTiming::Eager)), &opts);
    assert_eq!(lazy.cells.len(), eager.cells.len());
    for (l, e) in lazy.cells.iter().zip(&eager.cells) {
        let mut lc = l.clone();
        let mut ec = e.clone();
        lc.cell.diff_timing = DiffTiming::Lazy;
        ec.cell.diff_timing = DiffTiming::Lazy;
        lc.exec_time_ns = 0;
        ec.exec_time_ns = 0;
        lc.breakdown.exec_time_ns = 0;
        ec.breakdown.exec_time_ns = 0;
        lc.host_wall_ns = 0;
        ec.host_wall_ns = 0;
        assert_eq!(
            lc,
            ec,
            "cell {} diverged between timings beyond exec time",
            l.cell.key()
        );
    }
}

/// The loop test of the issue: two back-to-back runs of EVERY registered
/// application must produce identical `ClusterStats` — not just identical
/// aggregates, but the same per-processor exchange/fault/control records.
#[test]
fn back_to_back_runs_of_every_app_produce_identical_cluster_stats() {
    for w in Workload::tiny_suite() {
        let cfg = AppConfig::with_procs(3).sched(SchedConfig::seeded(7));
        let first = w.run_parallel(&cfg);
        let second = w.run_parallel(&cfg);
        assert_eq!(
            first.stats, second.stats,
            "{} reran with different ClusterStats",
            w.size_label
        );
        assert_eq!(first.checksum, second.checksum, "{}", w.size_label);
        assert_eq!(first.exec_time_ns, second.exec_time_ns, "{}", w.size_label);
    }
}

/// Two consecutive in-process engine runs over all eight applications
/// (table1's tiny grid) must render byte-identical JSON and CSV — the
/// machine formats carry no nondeterministic field.
#[test]
fn consecutive_engine_runs_emit_byte_identical_documents() {
    let args = BenchArgs {
        nprocs: 2,
        scale: tm_bench::Scale::Tiny,
        ..BenchArgs::defaults(2)
    };
    let exp = Experiment::table1(&args);
    let apps: std::collections::HashSet<_> = exp.cells.iter().map(|c| c.app).collect();
    assert_eq!(apps.len(), 8, "table1 must cover all eight applications");

    let opts = RunnerOptions { threads: 2 };
    let first = run_experiment(&exp, &opts);
    let second = run_experiment(&exp, &opts);
    for format in [OutputFormat::Json, OutputFormat::Csv] {
        assert_eq!(
            render(&first, format),
            render(&second, format),
            "consecutive runs must emit byte-identical {format:?}"
        );
    }
}

/// End-to-end acceptance at the binary surface: the same invocation of a
/// real figure binary, twice, must write byte-identical JSON to stdout.
#[test]
fn binary_reruns_are_byte_identical() {
    let args = ["--tiny", "--format", "json", "--seed", "11"];
    let first = run_binary("fig3", &args);
    let second = run_binary("fig3", &args);
    assert_eq!(first, second, "fig3 --tiny JSON differed between two runs");
    assert!(first.contains("\"schedule\": \"seeded\""));
    assert!(!first.contains("host_wall_ns"));
}

/// Interval GC soundness at application level: run a multi-barrier workload
/// under an aggressively small validation-flush limit.  A retirement of any
/// interval still needed — uncovered by some vector clock or with a pending
/// notice outstanding — would panic the run at the next diff request
/// (`a stored diff must exist for a published notice`), so completing with a
/// verified checksum and non-trivial retirement is the soundness witness.
#[test]
fn aggressive_gc_flush_preserves_results_and_retires_logs() {
    use tdsm_core::{Align, DiffTiming, Dsm, DsmConfig, UnitPolicy};
    let run = |limit: usize, timing: DiffTiming| {
        let mut dsm = Dsm::new(
            DsmConfig {
                nprocs: 4,
                shared_pages: 64,
                unit: UnitPolicy::Static { pages: 1 },
                sched: SchedConfig::seeded(3),
                diff_timing: timing,
                ..DsmConfig::paper_default()
            }
            .gc_flush_pending_limit(limit),
        );
        let arr = dsm.alloc_array::<u64>(4096, Align::Page);
        let out = dsm.run(async |ctx| {
            let me = ctx.rank();
            let n = ctx.nprocs();
            // 24 phases of owner-computes over fixed bands: every barrier
            // broadcasts write notices for pages the other processors never
            // touch until the very end, so pending notices (and with them
            // the interval logs) grow without bound unless the
            // memory-pressure flush kicks in — the Jacobi-interior pattern.
            let chunk = arr.len() / n;
            let base = me * chunk;
            for phase in 0..24u64 {
                for i in 0..chunk {
                    arr.set(ctx, base + i, phase * 1_000 + (base + i) as u64)
                        .await;
                }
                ctx.barrier().await;
            }
            let mut sum = 0u64;
            for i in 0..arr.len() {
                sum += arr.get(ctx, i).await;
            }
            sum
        });
        let first = out.results[0];
        for r in &out.results {
            assert_eq!(*r, first, "all processors must read the same final array");
        }
        (first, out.stats.gc_counters())
    };

    // A tight limit forces validation flushes; a huge limit never flushes.
    let (sum_flush, gc_flush) = run(8, DiffTiming::Lazy);
    let (sum_never, gc_never) = run(usize::MAX, DiffTiming::Lazy);
    assert_eq!(sum_flush, sum_never, "GC must not change the computation");
    assert!(gc_flush.pending_flushes > 0, "tight limit must flush");
    assert_eq!(gc_never.pending_flushes, 0, "huge limit must never flush");
    assert!(
        gc_flush.retired_fraction() >= 0.9,
        "flush-driven GC should retire almost everything: {gc_flush:?}"
    );
    assert!(
        gc_flush.intervals_retired >= gc_never.intervals_retired,
        "flushing must never retire less"
    );

    // And the flush machinery is timing-independent like everything else.
    let (sum_eager, gc_eager) = run(8, DiffTiming::Eager);
    assert_eq!(sum_flush, sum_eager);
    assert_eq!(gc_flush, gc_eager);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Different seeds are free to reorder lock arrivals (and usually do),
    /// but the application RESULTS must not change: TSP's exact optimum and
    /// Water's energy checksum verify against the sequential reference for
    /// every seed, and each seed reproduces itself.
    #[test]
    fn any_seed_reorders_but_preserves_results(seed in any::<u64>()) {
        let cfg = AppConfig::with_procs(4).sched(SchedConfig::seeded(seed));

        let w = Workload::tiny(AppId::Tsp);
        let par = w.run_parallel(&cfg);
        // Branch-and-bound finds the one global optimum whatever the
        // interleaving.
        prop_assert_eq!(par.checksum, w.run_sequential());
        let again = w.run_parallel(&cfg);
        prop_assert_eq!(&par.stats, &again.stats);

        let w = Workload::tiny(AppId::Water);
        let par = w.run_parallel(&cfg);
        // Floating-point reductions may associate differently per
        // interleaving; the documented 1e-6 relative tolerance applies.
        prop_assert!(
            checksums_match(par.checksum, w.run_sequential(), 1e-6),
            "Water checksum diverged at seed {}", seed
        );
    }

    /// The GC watermark computation never retires an interval that some
    /// processor's vector clock does not cover yet, nor one with a pending
    /// (incorporated but unapplied) write notice anywhere.  `prev_published`
    /// is the barrier's coverage bound — every clock dominates the previous
    /// episode's snapshot — and `floors` are the per-arriver pending minima,
    /// so the sealed threshold must sit strictly below both.
    #[test]
    fn gc_thresholds_never_retire_uncovered_or_pending_intervals(
        prev in prop::collection::vec(0u32..1000, 1..8),
        floors in prop::collection::vec(
            prop::collection::vec(0u32..1000, 1..8), 1..8),
    ) {
        use tdsm_core::gc_thresholds;
        let nprocs = prev.len();
        // Normalize the arrivers' floor vectors to the processor count; a
        // raw 0 stands for "nothing pending" and maps to the u32::MAX
        // sentinel (real floors are 1-based sequence numbers).
        let arrivers: Vec<Vec<u32>> = floors
            .iter()
            .map(|f| {
                (0..nprocs)
                    .map(|p| match f.get(p).copied().unwrap_or(0) {
                        0 => u32::MAX,
                        s => s,
                    })
                    .collect()
            })
            .collect();
        // The barrier folds arrivers by elementwise minimum.
        let folded: Vec<u32> = (0..nprocs)
            .map(|p| arrivers.iter().map(|a| a[p]).min().unwrap_or(u32::MAX))
            .collect();
        let thresholds = gc_thresholds(&prev, &folded);
        for p in 0..nprocs {
            // Covered: every clock dominates prev_published, so retiring at
            // or below it is safe; the threshold must not exceed it.
            prop_assert!(thresholds[p] <= prev[p],
                "proc {} threshold {} exceeds coverage {}", p, thresholds[p], prev[p]);
            // Applied: no arriver may still hold a pending notice at or
            // below the threshold.
            for (a, arriver) in arrivers.iter().enumerate() {
                prop_assert!(thresholds[p] < arriver[p],
                    "proc {} threshold {} reaches arriver {}'s pending floor {}",
                    p, thresholds[p], a, arriver[p]);
            }
        }
    }
}

/// Run one tm-bench binary via `cargo run` (always building from current
/// sources; see tests/harness_smoke.rs for the full rationale) and return
/// its stdout.
fn run_binary(bin: &str, args: &[&str]) -> String {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let mut cmd = std::process::Command::new(cargo);
    cmd.args(["run", "-q", "-p", "tm-bench", "--bin", bin]);
    if std::env::current_exe()
        .ok()
        .and_then(|exe| {
            exe.parent()
                .and_then(|p| p.parent())
                .and_then(|p| p.file_name())
                .map(|n| n == "release")
        })
        .unwrap_or(false)
    {
        cmd.arg("--release");
    }
    let output = cmd
        .arg("--")
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("failed to launch cargo run --bin {bin}: {e}"));
    assert!(
        output.status.success(),
        "{bin} {args:?} exited with {:?}\nstderr:\n{}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("binary output must be UTF-8")
}
