//! Integration tests of the `tm_apps::suite` registry: the paper's eight
//! applications must all be registered, and the consistency-unit policy set
//! must be exactly the §3 static units (4 K, 8 K, 16 K) plus the §4 dynamic
//! aggregation policy — the configuration axis every figure sweeps.

use std::collections::HashSet;

use tdsm_core::UnitPolicy;
use tm_apps::{paper_unit_policies, AppId, Workload};

#[test]
fn suite_registers_all_eight_paper_applications() {
    let expected = [
        AppId::Barnes,
        AppId::Ilink,
        AppId::Tsp,
        AppId::Water,
        AppId::Jacobi,
        AppId::Fft3d,
        AppId::Mgs,
        AppId::Shallow,
    ];
    let all = AppId::all();
    assert_eq!(all.len(), 8);
    let registered: HashSet<AppId> = all.iter().copied().collect();
    for app in expected {
        assert!(
            registered.contains(&app),
            "{} missing from AppId::all()",
            app.name()
        );
        assert!(
            !Workload::for_app(app).is_empty(),
            "{} has no registered workloads",
            app.name()
        );
    }
    // Names match the paper's tables.
    let names: HashSet<&str> = all.iter().map(|a| a.name()).collect();
    for name in [
        "Barnes", "Ilink", "TSP", "Water", "Jacobi", "3D-FFT", "MGS", "Shallow",
    ] {
        assert!(names.contains(name), "missing display name {name}");
    }
}

#[test]
fn figure_groupings_partition_the_suite() {
    let f1 = AppId::figure1();
    let f2 = AppId::figure2();
    assert_eq!(
        f1,
        vec![AppId::Barnes, AppId::Ilink, AppId::Tsp, AppId::Water]
    );
    assert_eq!(
        f2,
        vec![AppId::Jacobi, AppId::Fft3d, AppId::Mgs, AppId::Shallow]
    );
    let union: HashSet<AppId> = f1.iter().chain(f2.iter()).copied().collect();
    assert_eq!(
        union.len(),
        8,
        "figure groups must partition the eight apps"
    );
}

#[test]
fn paper_unit_policies_match_the_section3_and_4_policy_set() {
    // The exact policy axis used by tests/aggregation_model.rs and every
    // figure binary: 4 K / 8 K / 16 K static units and dynamic aggregation
    // with 4-page groups.
    let expected = [
        ("4K", UnitPolicy::Static { pages: 1 }),
        ("8K", UnitPolicy::Static { pages: 2 }),
        ("16K", UnitPolicy::Static { pages: 4 }),
        ("Dyn", UnitPolicy::Dynamic { max_group_pages: 4 }),
    ];
    let policies = paper_unit_policies();
    assert_eq!(policies.len(), expected.len());
    for ((label, unit), (exp_label, exp_unit)) in policies.iter().zip(expected.iter()) {
        assert_eq!(label, exp_label);
        assert_eq!(unit, exp_unit);
        // Labels agree with the units' own rendering at 4 KB pages.
        assert_eq!(&unit.label(4096), label);
    }
}

#[test]
fn tiny_suite_mirrors_the_paper_suite_per_app() {
    // The tiny suite (used by the --tiny smoke mode of the figure binaries)
    // must cover the same eight applications, one workload each.
    let tiny = Workload::tiny_suite();
    assert_eq!(tiny.len(), 8);
    let apps: HashSet<AppId> = tiny.iter().map(|w| w.app).collect();
    assert_eq!(apps.len(), 8);
}
