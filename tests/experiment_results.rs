//! Machine-readable results: every named experiment must emit JSON that
//! parses and round-trips losslessly, both through the library emitters and
//! end-to-end through the real binaries (`--tiny --format json`).

use tm_bench::{
    parse_result, render, run_experiment, BenchArgs, Experiment, ExperimentResult, OutputFormat,
    RunnerOptions, RESULT_SCHEMA,
};

fn tiny_args() -> BenchArgs {
    BenchArgs {
        nprocs: 2,
        scale: tm_bench::Scale::Tiny,
        ..BenchArgs::defaults(2)
    }
}

fn run_tiny(name: &str) -> ExperimentResult {
    let exp = Experiment::named(name, &tiny_args()).unwrap();
    run_experiment(&exp, &RunnerOptions { threads: 2 })
}

#[test]
fn every_named_experiment_roundtrips_through_json() {
    for name in Experiment::all_names() {
        let result = run_tiny(name);
        let text = render(&result, OutputFormat::Json);
        let parsed = parse_result(&text)
            .unwrap_or_else(|e| panic!("'{name}' JSON does not parse back: {e}"));
        // The document carries every deterministic field; host wall-clock
        // timing is display-only and deliberately absent from it.
        assert_eq!(
            parsed,
            result.without_host_times(),
            "'{name}' JSON round-trip lost data"
        );
        // And the re-emission of the parsed document is byte-identical,
        // so results files are stable fixed points.
        assert_eq!(render(&parsed, OutputFormat::Json), text);
    }
}

#[test]
fn csv_projection_matches_the_cells() {
    for name in Experiment::all_names() {
        let result = run_tiny(name);
        let csv = render(&result, OutputFormat::Csv);
        let mut lines = csv.lines();
        let header = lines.next().expect("csv header");
        assert!(header.starts_with("experiment,app,size,policy,nprocs,seed,"));
        let rows: Vec<&str> = lines.collect();
        assert_eq!(rows.len(), result.cells.len(), "'{name}' row count");
        for (row, cell) in rows.iter().zip(&result.cells) {
            assert!(
                row.starts_with(&format!(
                    "{},{},{},{},{}",
                    name,
                    cell.cell.app.name(),
                    cell.cell.size_label,
                    cell.cell.policy_label,
                    cell.cell.nprocs
                )),
                "'{name}' CSV row out of order: {row}"
            );
        }
    }
}

/// The additive v1 fields of the home-based protocol round-trip exactly
/// like the rest: a home-based sweep's JSON re-parses to the host-time-free
/// fixed point (so PR 3's round-trip property extends to the new fields
/// unmodified), and both machine formats carry the protocol column and the
/// per-protocol counters.
#[test]
fn home_based_documents_roundtrip_and_carry_protocol_fields() {
    use tdsm_core::ProtocolMode;
    let args = BenchArgs {
        protocol: ProtocolMode::home_based(),
        ..tiny_args()
    };
    let exp = Experiment::named("fig1", &args).unwrap();
    let result = run_experiment(&exp, &RunnerOptions { threads: 2 });

    let json = render(&result, OutputFormat::Json);
    assert!(json.contains("\"protocol\": \"home-based\""));
    assert!(json.contains("\"home_updates\""));
    assert!(json.contains("\"page_fetches\""));
    let parsed = parse_result(&json).unwrap();
    assert_eq!(parsed, result.without_host_times());
    assert_eq!(render(&parsed, OutputFormat::Json), json);
    for cell in &parsed.cells {
        assert_eq!(cell.cell.protocol, ProtocolMode::home_based());
    }

    let csv = render(&result, OutputFormat::Csv);
    assert!(csv.lines().next().unwrap().contains(",protocol,"));
    assert!(csv
        .lines()
        .next()
        .unwrap()
        .contains(",home_updates,page_fetches,"));
    assert!(csv.lines().nth(1).unwrap().contains(",home-based,"));
}

/// Acceptance end-to-end: each of the seven binaries, run with
/// `--tiny --format json`, must write a parseable document to stdout that
/// round-trips through the emitters, and `--out` must write the same schema
/// to a file.
#[test]
fn binaries_emit_parseable_json_in_tiny_mode() {
    let bins = [
        "table1",
        "fig1",
        "fig2",
        "fig3",
        "fig_dyn_group",
        "fig_network",
        "fig_scale",
    ];
    for bin in bins {
        let stdout = run_binary(bin, &["--tiny", "--format", "json"]);
        let result = parse_result(&stdout)
            .unwrap_or_else(|e| panic!("{bin} --tiny --format json stdout: {e}\n{stdout}"));
        assert_eq!(result.name, bin);
        assert!(!result.cells.is_empty());
        assert!(stdout.contains(RESULT_SCHEMA));
        // Round-trip: re-render the parsed document and parse it again.
        let again = parse_result(&render(&result, OutputFormat::Json)).unwrap();
        assert_eq!(again, result, "{bin} JSON round-trip lost data");
    }

    // --out keeps the human report on stdout and writes JSON to the file.
    let dir = std::env::temp_dir().join(format!("tm-bench-results-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fig3.json");
    let stdout = run_binary("fig3", &["--tiny", "--out", path.to_str().unwrap()]);
    assert!(
        stdout.contains("Figure 3"),
        "human report must stay on stdout"
    );
    let file = std::fs::read_to_string(&path).unwrap();
    let result = parse_result(&file).unwrap();
    assert_eq!(result.name, "fig3");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Run one tm-bench binary via `cargo run` (always building from current
/// sources; see tests/harness_smoke.rs for the full rationale) and return
/// its stdout.
fn run_binary(bin: &str, args: &[&str]) -> String {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let mut cmd = std::process::Command::new(cargo);
    cmd.args(["run", "-q", "-p", "tm-bench", "--bin", bin]);
    if running_release_profile() {
        cmd.arg("--release");
    }
    let output = cmd
        .arg("--")
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("failed to launch cargo run --bin {bin}: {e}"));
    assert!(
        output.status.success(),
        "{bin} {args:?} exited with {:?}\nstderr:\n{}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("binary output must be UTF-8")
}

fn running_release_profile() -> bool {
    std::env::current_exe()
        .ok()
        .and_then(|exe| {
            exe.parent()
                .and_then(|p| p.parent())
                .and_then(|p| p.file_name())
                .map(|n| n == "release")
        })
        .unwrap_or(false)
}
