//! Stress and property-style integration tests of the DSM core: many
//! processors, many locks, contended pages, repeated runs, and statistics
//! invariants that must hold for arbitrary access patterns.

use proptest::prelude::*;
use tdsm_core::{Align, Dsm, DsmConfig, UnitPolicy};

fn config(nprocs: usize, unit: UnitPolicy) -> DsmConfig {
    DsmConfig::with_procs(nprocs).shared_pages(128).unit(unit)
}

#[test]
fn sixteen_processors_heavy_lock_contention() {
    let mut dsm = Dsm::new(config(16, UnitPolicy::Static { pages: 1 }));
    let counters = dsm.alloc_array::<u64>(8, Align::Page);
    let out = dsm.run(async |ctx| {
        for i in 0..40usize {
            let slot = i % 8;
            ctx.acquire(slot).await;
            let v = counters.get(ctx, slot).await;
            counters.set(ctx, slot, v + 1).await;
            ctx.release(slot).await;
        }
        ctx.barrier().await;
        let mut total = 0u64;
        for s in 0..8 {
            total += counters.get(ctx, s).await;
        }
        total
    });
    for r in out.results {
        assert_eq!(r, 16 * 40);
    }
}

#[test]
fn repeated_runs_are_independent_and_deterministic_in_content() {
    let mut dsm = Dsm::new(config(4, UnitPolicy::Static { pages: 2 }));
    let arr = dsm.alloc_array::<u64>(4096, Align::Page);
    let mut sums = Vec::new();
    for _ in 0..3 {
        let out = dsm.run(async |ctx| {
            let me = ctx.rank();
            let chunk = arr.len() / ctx.nprocs();
            let vals: Vec<u64> = (0..chunk as u64).map(|i| i + me as u64).collect();
            arr.write_slice(ctx, me * chunk, &vals).await;
            ctx.barrier().await;
            arr.read_vec(ctx, 0, arr.len()).await.iter().sum::<u64>()
        });
        assert_eq!(out.results[0], out.results[3]);
        sums.push(out.results[0]);
    }
    assert_eq!(sums[0], sums[1]);
    assert_eq!(sums[1], sums[2]);
}

#[test]
fn ping_pong_migratory_page() {
    // A page whose ownership migrates back and forth under a lock: the
    // classic migratory pattern.  Checks both the final value and that the
    // diff traffic is all useful (each hand-off's data is read by the next
    // holder).
    let mut dsm = Dsm::new(config(2, UnitPolicy::Static { pages: 1 }));
    let cell = dsm.alloc_scalar::<u64>(Align::Page);
    let out = dsm.run(async |ctx| {
        for _ in 0..50 {
            ctx.acquire(0).await;
            let v = cell.get(ctx).await;
            cell.set(ctx, v + 1).await;
            ctx.release(0).await;
        }
        ctx.barrier().await;
        cell.get(ctx).await
    });
    assert_eq!(out.results[0], 100);
    let b = out.breakdown();
    assert_eq!(
        b.useless_messages, 0,
        "migratory data is always read by the next holder"
    );
}

#[test]
fn statistics_invariants_hold_for_a_mixed_workload() {
    for unit in [
        UnitPolicy::Static { pages: 1 },
        UnitPolicy::Static { pages: 4 },
        UnitPolicy::Dynamic { max_group_pages: 4 },
    ] {
        let mut dsm = Dsm::new(config(6, unit));
        let shared = dsm.alloc_array::<u64>(32 * 512, Align::Page);
        let out = dsm.run(async |ctx| {
            let me = ctx.rank();
            let n = ctx.nprocs();
            for round in 0..3u64 {
                for slot in (me..32).step_by(n) {
                    let vals: Vec<u64> = (0..512u64).map(|i| i * round + slot as u64).collect();
                    shared.write_slice(ctx, slot * 512, &vals).await;
                }
                ctx.barrier().await;
                // Read the next processor's slots.
                for slot in (((me + 1) % n)..32).step_by(n) {
                    let _ = shared.read_vec(ctx, slot * 512, 256).await;
                }
                ctx.barrier().await;
            }
            0u64
        });
        let b = out.breakdown();
        let stats = &out.stats;
        // Conservation: message totals and byte totals derived two ways agree.
        assert_eq!(b.total_messages(), stats.total_messages());
        assert!(b.total_payload() <= stats.total_wire_bytes());
        // Useful data can never exceed what was delivered.
        assert!(b.useful_data <= b.total_payload());
        // Every fault appears in the signature histogram.
        assert_eq!(b.signature.total_faults(), b.faults);
        // Execution time is the maximum over the processors.
        let max_proc = stats.per_proc.iter().map(|p| p.exec_time_ns).max().unwrap();
        assert_eq!(b.exec_time_ns, max_proc);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For arbitrary disjoint writer/reader patterns the DSM must deliver the
    /// values the writers produced, and the statistics invariants must hold.
    #[test]
    fn arbitrary_disjoint_ownership_patterns(seed in 0u64..1000) {
        let nprocs = 2 + (seed % 3) as usize; // 2..4 processors
        let mut dsm = Dsm::new(config(nprocs, UnitPolicy::Static { pages: 1 }));
        let arr = dsm.alloc_array::<u64>(nprocs * 1024, Align::Page);
        let out = dsm.run(async |ctx| {
            let me = ctx.rank();
            let vals: Vec<u64> = (0..1024u64).map(|i| i.wrapping_mul(seed + 1) + me as u64).collect();
            arr.write_slice(ctx, me * 1024, &vals).await;
            ctx.barrier().await;
            // Everyone reads everything.
            arr.read_vec(ctx, 0, arr.len()).await.iter().copied().sum::<u64>()
        });
        let expected: u64 = (0..nprocs as u64)
            .flat_map(|p| (0..1024u64).map(move |i| i.wrapping_mul(seed + 1) + p))
            .fold(0u64, |a, b| a.wrapping_add(b));
        for r in &out.results {
            prop_assert_eq!(*r, expected);
        }
        let b = out.breakdown();
        prop_assert!(b.useful_data <= b.total_payload());
        prop_assert_eq!(b.signature.total_faults(), b.faults);
    }
}
