//! Integration tests reproducing the worked examples of §2 of the paper:
//! when false sharing produces useless messages, when it produces useless
//! (piggybacked) data, and how the classification interacts with true
//! sharing.

use tdsm_core::{Align, Dsm, DsmConfig, UnitPolicy};

fn config(nprocs: usize) -> DsmConfig {
    DsmConfig::with_procs(nprocs).shared_pages(64)
}

/// §2, useless messages: p1 writes the top half of a page, p2 the bottom
/// half; after a barrier p3 reads only the top half.  Logically one exchange
/// with p1 would suffice, but the invalidation forces p3 to request diffs
/// from both writers — the exchange with p2 is a useless message pair.
#[test]
fn write_write_false_sharing_produces_useless_messages() {
    let mut dsm = Dsm::new(config(3));
    let page = dsm.alloc_array::<u32>(1024, Align::Page);
    let out = dsm.run(async |ctx| {
        match ctx.rank() {
            0 => page.write_slice(ctx, 0, &vec![1u32; 512]).await,
            1 => page.write_slice(ctx, 512, &vec![2u32; 512]).await,
            _ => {}
        }
        ctx.barrier().await;
        if ctx.rank() == 2 {
            page.read_vec(ctx, 0, 512)
                .await
                .iter()
                .map(|&v| u64::from(v))
                .sum()
        } else {
            0u64
        }
    });
    assert_eq!(out.results[2], 512);
    let b = out.breakdown();
    // Exactly one useless exchange (2 messages): the one with the
    // bottom-half writer.
    assert_eq!(b.useless_messages, 2);
    // The useful exchange delivered the top half; the useless one carried the
    // bottom half, all of it useless data in a useless message.
    assert_eq!(b.useful_data, 2048);
    assert_eq!(b.useless_data_in_useless_msgs, 2048);
    assert_eq!(b.piggybacked_useless_data, 0);
    // The reader's single fault saw two concurrent writers: the signature has
    // one fault in bucket 2, split one useful / one useless exchange.
    let bucket = b.signature.bucket(2);
    assert_eq!(bucket.faults, 1);
    assert_eq!(bucket.useful_exchanges, 1);
    assert_eq!(bucket.useless_exchanges, 1);
}

/// §2, useless data: p1 modifies an entire page, p2 reads only the top half.
/// The single diff carries the whole page; the bottom half is piggybacked
/// useless data on a useful message.
#[test]
fn whole_page_diff_with_partial_read_produces_piggybacked_useless_data() {
    let mut dsm = Dsm::new(config(2));
    let page = dsm.alloc_array::<u32>(1024, Align::Page);
    let out = dsm.run(async |ctx| {
        if ctx.rank() == 0 {
            page.write_slice(ctx, 0, &(1..=1024u32).collect::<Vec<_>>())
                .await;
        }
        ctx.barrier().await;
        if ctx.rank() == 1 {
            page.read_vec(ctx, 0, 512)
                .await
                .iter()
                .map(|&v| u64::from(v))
                .sum()
        } else {
            0u64
        }
    });
    assert_eq!(out.results[1], (1..=512u64).sum());
    let b = out.breakdown();
    assert_eq!(b.useless_messages, 0);
    assert_eq!(b.useful_data, 2048);
    assert_eq!(b.piggybacked_useless_data, 2048);
    assert_eq!(b.useless_data_in_useless_msgs, 0);
}

/// The same page contents, but the reader consumes everything: no useless
/// data at all.  (The control case for the previous test.)
#[test]
fn full_read_has_no_useless_data() {
    let mut dsm = Dsm::new(config(2));
    let page = dsm.alloc_array::<u32>(1024, Align::Page);
    let out = dsm.run(async |ctx| {
        if ctx.rank() == 0 {
            page.write_slice(ctx, 0, &(1..=1024u32).collect::<Vec<_>>())
                .await;
        }
        ctx.barrier().await;
        if ctx.rank() == 1 {
            page.read_vec(ctx, 0, 1024)
                .await
                .iter()
                .map(|&v| u64::from(v))
                .sum()
        } else {
            0u64
        }
    });
    assert_eq!(out.results[1], (1..=1024u64).sum());
    let b = out.breakdown();
    assert_eq!(b.useless_messages, 0);
    assert_eq!(b.piggybacked_useless_data, 0);
    assert_eq!(b.useless_data_in_useless_msgs, 0);
    assert_eq!(b.useful_data, 4096);
}

/// Lazy release consistency semantics: a value written under a lock is
/// visible to the next acquirer of that lock without a barrier.
#[test]
fn lock_transfer_carries_consistency() {
    let mut dsm = Dsm::new(config(2));
    let cell = dsm.alloc_scalar::<u64>(Align::Page);
    let flag = dsm.alloc_scalar::<u64>(Align::Page);
    let out = dsm.run(async |ctx| {
        if ctx.rank() == 0 {
            ctx.acquire(0).await;
            cell.set(ctx, 4242).await;
            flag.set(ctx, 1).await;
            ctx.release(0).await;
            ctx.barrier().await;
            0
        } else {
            // Spin on the lock until the producer's update is visible.
            loop {
                ctx.acquire(0).await;
                let ready = flag.get(ctx).await == 1;
                let v = cell.get(ctx).await;
                ctx.release(0).await;
                if ready {
                    ctx.barrier().await;
                    return v;
                }
                std::thread::yield_now();
            }
        }
    });
    assert_eq!(out.results[1], 4242);
}

/// Concurrent writers to disjoint halves of the same page never lose each
/// other's updates (the multiple-writer protocol), under every consistency
/// unit policy.
#[test]
fn multiple_writer_merge_under_all_policies() {
    for unit in [
        UnitPolicy::Static { pages: 1 },
        UnitPolicy::Static { pages: 2 },
        UnitPolicy::Static { pages: 4 },
        UnitPolicy::Dynamic { max_group_pages: 4 },
    ] {
        let mut dsm = Dsm::new(config(4).unit(unit));
        let page = dsm.alloc_array::<u32>(1024, Align::Page);
        let out = dsm.run(async |ctx| {
            let me = ctx.rank();
            let quarter = 256usize;
            let vals: Vec<u32> = (0..quarter as u32)
                .map(|i| i + 1 + 1000 * me as u32)
                .collect();
            page.write_slice(ctx, me * quarter, &vals).await;
            ctx.barrier().await;
            let all = page.read_vec(ctx, 0, 1024).await;
            all.iter().map(|&v| u64::from(v)).sum::<u64>()
        });
        let expected: u64 = (0..4u64)
            .flat_map(|p| (0..256u64).map(move |i| i + 1 + 1000 * p))
            .sum();
        for r in &out.results {
            assert_eq!(*r, expected, "unit {unit:?}");
        }
    }
}

/// The dynamic aggregation scheme keeps prefetched pages invalid until their
/// first access, so its prefetches never change program results even when
/// the access pattern shifts between intervals.
#[test]
fn dynamic_aggregation_adapts_to_changing_access_patterns() {
    let mut dsm = Dsm::new(config(2).unit(UnitPolicy::Dynamic { max_group_pages: 8 }));
    let region = dsm.alloc_array::<u64>(16 * 512, Align::Page);
    let out = dsm.run(async |ctx| {
        let mut acc = 0u64;
        for round in 0..4u64 {
            if ctx.rank() == 0 {
                // The producer writes all 16 pages every round.
                for p in 0..16usize {
                    let vals: Vec<u64> = (0..512u64).map(|i| i * (round + 1) + p as u64).collect();
                    region.write_slice(ctx, p * 512, &vals).await;
                }
            }
            ctx.barrier().await;
            if ctx.rank() == 1 {
                // The consumer's working set changes every round.
                let pages: Vec<usize> = match round % 2 {
                    0 => vec![0, 2, 4, 6],
                    _ => vec![1, 3, 5, 7, 9],
                };
                for p in pages {
                    acc += region.read_vec(ctx, p * 512, 512).await.iter().sum::<u64>();
                }
            }
            ctx.barrier().await;
        }
        acc
    });
    // Recompute the expected value directly.
    let mut expected = 0u64;
    for round in 0..4u64 {
        let pages: Vec<u64> = match round % 2 {
            0 => vec![0, 2, 4, 6],
            _ => vec![1, 3, 5, 7, 9],
        };
        for p in pages {
            expected += (0..512u64).map(|i| i * (round + 1) + p).sum::<u64>();
        }
    }
    assert_eq!(out.results[1], expected);
}
