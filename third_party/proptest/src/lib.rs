//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest's API this workspace uses — the
//! [`proptest!`] macro, `prop_assert*!`/`prop_assume!`, integer-range, tuple
//! and `prop::collection::vec` strategies, `prop_map`, and
//! [`ProptestConfig`](test_runner::ProptestConfig) — over a small,
//! **deterministic** runner: inputs are generated from a fixed per-test seed
//! (a hash of the test function's name), so a failure in CI reproduces
//! locally and across runs. There is no shrinking; failures report the case
//! number and seed instead.
//!
//! The number of cases per property defaults to
//! [`ProptestConfig::default`](test_runner::ProptestConfig), can be set
//! per-block with `#![proptest_config(ProptestConfig::with_cases(n))]`, and
//! can be overridden globally with the `PROPTEST_CASES` environment variable.

/// Deterministic pseudo-random source (splitmix64) used to generate cases.
pub mod rng {
    /// Deterministic RNG handed to strategies by the runner.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Create a generator from a seed.
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next raw 64-bit value (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u128) -> u128 {
            debug_assert!(bound > 0);
            let raw = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
            raw % bound
        }
    }
}

/// The runner, its configuration, and the case-level error type.
pub mod test_runner {
    use crate::rng::TestRng;

    /// Configuration of one `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required per property.
        pub cases: u32,
        /// Maximum rejected cases (`prop_assume!` misses) before giving up.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Self::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Bounded so whole-workspace test runs stay fast; the real crate
            // defaults to 256. Override per-block with `with_cases` or
            // globally with PROPTEST_CASES.
            ProptestConfig {
                cases: 64,
                max_global_rejects: 1024,
            }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed — the property is falsified.
        Fail(String),
        /// `prop_assume!` rejected the inputs — generate a fresh case.
        Reject(String),
    }

    impl TestCaseError {
        /// A failed case with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected case with the given reason.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Drives one property: generates cases until the configured count has
    /// passed, a case fails, or the reject budget is exhausted.
    pub struct TestRunner {
        config: ProptestConfig,
        name: &'static str,
        seed: u64,
    }

    impl TestRunner {
        /// Create a runner for the property named `name` (the seed source).
        pub fn new(config: ProptestConfig, name: &'static str) -> Self {
            // FNV-1a over the test name: stable across runs and platforms.
            let mut seed = 0xCBF2_9CE4_8422_2325u64;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRunner { config, name, seed }
        }

        fn case_budget(&self) -> u32 {
            match std::env::var("PROPTEST_CASES") {
                Ok(v) => v.parse().unwrap_or(self.config.cases),
                Err(_) => self.config.cases,
            }
        }

        /// Run the property to completion, panicking on the first failure.
        pub fn run<F>(&mut self, mut case: F)
        where
            F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
        {
            let cases = self.case_budget();
            let mut rng = TestRng::new(self.seed);
            let mut passed = 0u32;
            let mut rejected = 0u32;
            while passed < cases {
                match case(&mut rng) {
                    Ok(()) => passed += 1,
                    Err(TestCaseError::Reject(_)) => {
                        rejected += 1;
                        if rejected > self.config.max_global_rejects {
                            panic!(
                                "proptest '{}': too many rejected cases ({rejected}) — \
                                 prop_assume! condition is too strict",
                                self.name
                            );
                        }
                    }
                    Err(TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest '{}' falsified at case {} (seed 0x{:016x}): {msg}",
                            self.name,
                            passed + 1,
                            self.seed
                        );
                    }
                }
            }
        }
    }
}

/// Strategies: how input values are generated.
pub mod strategy {
    use crate::rng::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {
            $(
                impl Strategy for Range<$t> {
                    type Value = $t;

                    fn generate(&self, rng: &mut TestRng) -> $t {
                        assert!(self.start < self.end, "empty range strategy");
                        let span = self.end as i128 - self.start as i128;
                        (self.start as i128 + rng.below(span as u128) as i128) as $t
                    }
                }

                impl Strategy for RangeInclusive<$t> {
                    type Value = $t;

                    fn generate(&self, rng: &mut TestRng) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "empty range strategy");
                        let span = hi as i128 - lo as i128 + 1;
                        (lo as i128 + rng.below(span as u128) as i128) as $t
                    }
                }
            )*
        };
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident/$idx:tt),+))*) => {
            $(
                impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                    type Value = ($($s::Value,)+);

                    fn generate(&self, rng: &mut TestRng) -> Self::Value {
                        ($(self.$idx.generate(rng),)+)
                    }
                }
            )*
        };
    }

    tuple_strategy! {
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
    }
}

/// `any::<T>()` — the canonical strategy for a type.
pub mod arbitrary {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generate one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {
            $(
                impl Arbitrary for $t {
                    fn arbitrary(rng: &mut TestRng) -> $t {
                        rng.next_u64() as $t
                    }
                }
            )*
        };
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct AnyStrategy<T> {
        _marker: PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: PhantomData,
        }
    }
}

/// The `prop::` namespace (`prop::collection::vec`, ...).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::rng::TestRng;
        use crate::strategy::Strategy;
        use std::ops::{Range, RangeInclusive};

        /// A range of permissible collection lengths.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi_inclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange {
                    lo: n,
                    hi_inclusive: n,
                }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi_inclusive: r.end - 1,
                }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                assert!(r.start() <= r.end(), "empty size range");
                SizeRange {
                    lo: *r.start(),
                    hi_inclusive: *r.end(),
                }
            }
        }

        /// Strategy generating `Vec`s of values from an element strategy.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            elem: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = self.size.hi_inclusive - self.size.lo + 1;
                let len = self.size.lo + rng.below(span as u128) as usize;
                (0..len).map(|_| self.elem.generate(rng)).collect()
            }
        }

        /// Generate vectors whose elements come from `elem` and whose length
        /// falls in `size`.
        pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                elem,
                size: size.into(),
            }
        }
    }

    pub use crate::strategy::Just;
}

/// Everything a `proptest!` call site needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Assert a condition inside a property, failing the case (not panicking
/// directly) so the runner can report the case number and seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert two expressions are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left == *right,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right
                );
            }
        }
    };
}

/// Assert two expressions are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left != *right,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left
                );
            }
        }
    };
}

/// Discard the current case (without failing) when its inputs do not satisfy
/// a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }` item
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($config:expr;) => {};
    ($config:expr; $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let mut runner =
                $crate::test_runner::TestRunner::new($config, stringify!($name));
            runner.run(|__proptest_rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)*
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_items!($config; $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn runner_is_deterministic() {
        use crate::rng::TestRng;
        use crate::strategy::Strategy;
        let s = 0u64..1000;
        let a: Vec<u64> = {
            let mut rng = TestRng::new(7);
            (0..16).map(|_| s.generate(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = TestRng::new(7);
            (0..16).map(|_| s.generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in 3usize..=5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((3..=5).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size_range(v in prop::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn tuples_and_map_compose(
            pair in (1u32..5, 10u32..15),
            doubled in (0u64..8).prop_map(|v| v * 2),
        ) {
            prop_assert!(pair.0 < pair.1);
            prop_assert_eq!(doubled % 2, 0);
            prop_assume!(doubled != 6); // exercise the reject path
            prop_assert_ne!(doubled, 6);
        }
    }
}
