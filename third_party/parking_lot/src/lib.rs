//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s API surface: `lock()`
//! returns the guard directly (no poisoning — a poisoned std lock is
//! recovered transparently, matching `parking_lot`'s behaviour of not
//! propagating panics through lock state), and `Condvar::wait` takes the
//! guard by `&mut`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};
use std::time::Duration;

/// A mutual-exclusion primitive with `parking_lot`'s non-poisoning API.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take ownership of the std
    // guard (std's `wait` consumes and returns it). Always `Some` outside
    // `Condvar::wait`.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner: Some(guard) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard taken during wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A condition variable with `parking_lot`'s `&mut guard` API.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing `guard` while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard taken during wait");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(std_guard);
    }

    /// Block until notified or `timeout` elapses. Returns `true` if the wait
    /// timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let std_guard = guard.inner.take().expect("guard taken during wait");
        let (std_guard, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(std_guard);
        result.timed_out()
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock and return the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            42
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        assert_eq!(handle.join().unwrap(), 42);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(7u32);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
    }
}
