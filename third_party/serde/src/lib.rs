//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names this workspace imports —
//! both as derive macros (no-op expansion, re-exported from the companion
//! `serde_derive` stand-in) and as marker traits, so either use resolves.
//!
//! Since PR 2 the stand-in also carries a real (if small) serialization
//! facility: the [`json`] module holds a JSON document model with a parser
//! and writers, and the [`ToJson`]/[`FromJson`] traits are implemented by
//! hand on the workspace types that the benchmark harness emits
//! (`tm_net::stats`, `tdsm_core::config`, `tm_bench`'s experiment results).
//! The derive macros stay no-ops; the hand impls are the source of truth for
//! the wire schema documented in `EXPERIMENTS.md`.

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

/// Marker counterpart of `serde::Serialize` (never used as a bound here).
pub trait SerializeMarker {}

/// Marker counterpart of `serde::Deserialize` (never used as a bound here).
pub trait DeserializeMarker {}

impl<T: ?Sized> SerializeMarker for T {}
impl<T: ?Sized> DeserializeMarker for T {}

/// Types that can render themselves as a JSON [`json::Value`].
pub trait ToJson {
    /// Build the JSON representation of `self`.
    fn to_json(&self) -> json::Value;
}

/// Types that can be reconstructed from a JSON [`json::Value`].
pub trait FromJson: Sized {
    /// Rebuild a value from its JSON representation, reporting which field
    /// was malformed or missing on failure.
    fn from_json(v: &json::Value) -> Result<Self, JsonSchemaError>;
}

/// A [`FromJson`] failure: which field of which type did not match the
/// expected schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonSchemaError {
    /// Dotted path of the offending field (e.g. `"cells[3].breakdown"`).
    pub path: String,
    /// What was expected there.
    pub expected: String,
}

impl JsonSchemaError {
    /// Build an error for `path` expecting `expected`.
    pub fn new(path: impl Into<String>, expected: impl Into<String>) -> Self {
        JsonSchemaError {
            path: path.into(),
            expected: expected.into(),
        }
    }

    /// Prefix the field path with an enclosing context (used while bubbling
    /// errors out of nested structures).
    pub fn in_context(mut self, ctx: &str) -> Self {
        self.path = if self.path.is_empty() {
            ctx.to_string()
        } else {
            format!("{ctx}.{}", self.path)
        };
        self
    }
}

impl std::fmt::Display for JsonSchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "at '{}': expected {}", self.path, self.expected)
    }
}

impl std::error::Error for JsonSchemaError {}

/// Fetch `key` from a JSON object and decode it as a `u64`, with a precise
/// error path on failure. Shared helper for the hand-written [`FromJson`]
/// impls across the workspace.
pub fn field_u64(v: &json::Value, key: &str) -> Result<u64, JsonSchemaError> {
    v.get(key)
        .and_then(|f| f.as_u64())
        .ok_or_else(|| JsonSchemaError::new(key, "unsigned integer"))
}

/// Fetch `key` from a JSON object and decode it as an `f64`.
pub fn field_f64(v: &json::Value, key: &str) -> Result<f64, JsonSchemaError> {
    v.get(key)
        .and_then(|f| f.as_f64())
        .ok_or_else(|| JsonSchemaError::new(key, "number"))
}

/// Fetch `key` from a JSON object and decode it as a string.
pub fn field_str<'a>(v: &'a json::Value, key: &str) -> Result<&'a str, JsonSchemaError> {
    v.get(key)
        .and_then(|f| f.as_str())
        .ok_or_else(|| JsonSchemaError::new(key, "string"))
}

/// Fetch `key` from a JSON object as an array slice.
pub fn field_arr<'a>(v: &'a json::Value, key: &str) -> Result<&'a [json::Value], JsonSchemaError> {
    v.get(key)
        .and_then(|f| f.as_arr())
        .ok_or_else(|| JsonSchemaError::new(key, "array"))
}
