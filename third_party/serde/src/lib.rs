//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names this workspace imports —
//! both as derive macros (no-op expansion, re-exported from the companion
//! `serde_derive` stand-in) and as marker traits, so either use resolves.

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize` (never used as a bound here).
pub trait SerializeMarker {}

/// Marker counterpart of `serde::Deserialize` (never used as a bound here).
pub trait DeserializeMarker {}

impl<T: ?Sized> SerializeMarker for T {}
impl<T: ?Sized> DeserializeMarker for T {}
