//! A small, dependency-free JSON document model: a [`Value`] tree, a strict
//! recursive-descent parser ([`parse`]) and compact/pretty writers.
//!
//! This is the machine-readable backbone of the benchmark harness: result
//! emitters build a [`Value`], golden/round-trip tests [`parse`] it back, and
//! the [`ToJson`](crate::ToJson)/[`FromJson`](crate::FromJson) traits defined
//! in the crate root connect it to the workspace's statistics types.
//!
//! Numbers are stored as `f64`. Every integer this workspace serializes
//! (message counts, byte counts, nanosecond clocks) is far below 2^53, so the
//! round trip through `f64` is exact; [`Value::as_u64`] enforces exactness.

use std::fmt;

/// A JSON document: null, boolean, number, string, array or object.
///
/// Objects preserve insertion order (they are association lists, not maps),
/// so emitted documents are deterministic and diffs are stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// A JSON number (always finite; non-finite floats serialize as `null`).
    Num(f64),
    /// A JSON string.
    Str(String),
    /// A JSON array.
    Arr(Vec<Value>),
    /// A JSON object as an ordered list of `(key, value)` pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Build an object from `(key, value)` pairs (ergonomic literal helper).
    pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Look up `key` in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a `Num`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact unsigned integer: rejects negatives,
    /// fractions and magnitudes above 2^53 (where `f64` stops being exact).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n < 0.0 || n.fract() != 0.0 || n > (1u64 << 53) as f64 {
            return None;
        }
        Some(n as u64)
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The element list, if this is an `Arr`.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render with two-space indentation (the form written to `--out` files).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => out.push_str(&format_number(*n)),
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => write_seq(out, indent, '[', ']', items.len(), |out, i, ind| {
                items[i].write(out, ind);
            }),
            Value::Obj(pairs) => write_seq(out, indent, '{', '}', pairs.len(), |out, i, ind| {
                let (k, v) = &pairs[i];
                write_escaped(out, k);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                v.write(out, ind);
            }),
        }
    }
}

/// Compact (single-line) rendering.
impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None);
        f.write_str(&out)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|d| d + 1);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(d) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(d));
        }
        item(out, i, inner);
    }
    if let Some(d) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(d));
    }
    out.push(close);
}

fn format_number(n: f64) -> String {
    if !n.is_finite() {
        // JSON has no Inf/NaN; mirror serde_json's `null` behaviour.
        return "null".to_string();
    }
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        // `{:?}` is Rust's shortest round-trippable float form.
        format!("{n:?}")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the problem.
    pub msg: String,
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            msg: msg.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("document nested too deeply"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: accept but do not synthesize
                            // astral characters from lone halves.
                            match char::from_u32(cp) {
                                Some(c) => out.push(c),
                                None => out.push('\u{fffd}'),
                            }
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one whole UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        self.pos += 1; // consume 'u'
        let mut cp = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("invalid \\u escape")),
            };
            cp = cp * 16 + d;
            self.pos += 1;
        }
        Ok(cp)
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = Value::obj(vec![
            ("name", Value::Str("fig1".into())),
            ("count", Value::Num(3.0)),
            ("ratio", Value::Num(0.5)),
            ("ok", Value::Bool(true)),
            ("missing", Value::Null),
            ("cells", Value::Arr(vec![Value::Num(1.0), Value::Num(2.0)])),
        ]);
        for text in [v.to_string(), v.pretty()] {
            assert_eq!(parse(&text).unwrap(), v, "failed on: {text}");
        }
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#"{"s":"a\"b\\c\ndAé"}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "a\"b\\c\ndAé");
    }

    #[test]
    fn numbers_parse_exactly() {
        let v = parse("[0, -1, 3.25, 1e3, 9007199254740992]").unwrap();
        let a = v.as_arr().unwrap();
        assert_eq!(a[0].as_u64(), Some(0));
        assert_eq!(a[1].as_f64(), Some(-1.0));
        assert_eq!(a[1].as_u64(), None);
        assert_eq!(a[2].as_f64(), Some(3.25));
        assert_eq!(a[2].as_u64(), None);
        assert_eq!(a[3].as_f64(), Some(1000.0));
        assert_eq!(a[4].as_u64(), Some(1 << 53));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("[1] x").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("nul").is_err());
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn object_lookup_preserves_order() {
        let v = parse(r#"{"b":1,"a":2}"#).unwrap();
        assert_eq!(v.get("b").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("a").unwrap().as_u64(), Some(2));
        assert_eq!(v.to_string(), r#"{"b":1,"a":2}"#);
    }
}
