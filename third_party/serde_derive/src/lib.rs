//! Offline stand-in for `serde_derive`.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as a marker
//! on wire-shaped types; nothing serializes at runtime yet. These derives
//! therefore expand to nothing, which keeps every call site source-compatible
//! with the real crate.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
