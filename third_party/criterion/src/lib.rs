//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use —
//! [`criterion_group!`]/[`criterion_main!`], [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`]/[`Bencher::iter_batched`],
//! [`BenchmarkId`] and [`BatchSize`] — over a deliberately small harness.
//!
//! By default (and always under `--test`) every registered routine is
//! executed exactly once, so `cargo test`/`cargo bench` smoke-test the bench
//! code quickly. Set `CRITERION_FULL=1` to instead run a short timed loop
//! per benchmark and report a rough ns/iter figure. This keeps benchmark
//! sources compiling and runnable offline; swap the workspace dependency
//! back to crates.io `criterion` for statistically meaningful measurements.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup (accepted, ignored by this harness).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark routines; runs the measured closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn new(iters: u64) -> Self {
        Bencher {
            iters,
            elapsed: Duration::ZERO,
        }
    }

    /// Measure `routine` over this bencher's iteration budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Measure `routine` over fresh inputs produced by `setup` (setup time is
    /// excluded from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// The benchmark manager: registers and runs benchmark functions.
pub struct Criterion {
    /// In quick mode (the default, and always under `--test`) every routine
    /// runs exactly once; `CRITERION_FULL=1` opts into a short timed loop.
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes bench targets with `--test` when running them under
        // `cargo test`; that always forces quick mode.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            quick: test_mode || std::env::var("CRITERION_FULL").is_err(),
        }
    }
}

impl Criterion {
    fn run_one(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        if self.quick {
            let mut b = Bencher::new(1);
            f(&mut b);
            println!("bench {id}: ok (1 iter, {:?})", b.elapsed);
        } else {
            // Calibrate: one iteration, then size a loop for ~50 ms.
            let mut probe = Bencher::new(1);
            f(&mut probe);
            let per_iter = probe.elapsed.max(Duration::from_nanos(1));
            let iters = (Duration::from_millis(50).as_nanos() / per_iter.as_nanos())
                .clamp(1, 10_000) as u64;
            let mut b = Bencher::new(iters);
            f(&mut b);
            let ns = b.elapsed.as_nanos() as f64 / iters as f64;
            println!("bench {id}: {ns:.0} ns/iter ({iters} iters)");
        }
    }

    /// Run one benchmark routine.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        self.run_one(id, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Set the sample count (accepted for API compatibility; this harness
    /// sizes its loop by time, not samples).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set the measurement time (accepted, ignored).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one routine in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, &mut f);
        self
    }

    /// Run one routine parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, &mut |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a single runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate the `main` function running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_runs_each_routine_once() {
        let mut runs = 0u32;
        let mut c = Criterion { quick: true };
        c.bench_function("counted", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn groups_and_batched_iteration() {
        let mut c = Criterion { quick: true };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut seen = Vec::new();
        group.bench_with_input(BenchmarkId::from_parameter("x"), &41u32, |b, &v| {
            b.iter_batched(|| v + 1, |input| seen.push(input), BatchSize::SmallInput)
        });
        group.finish();
        assert_eq!(seen, vec![42]);
    }
}
