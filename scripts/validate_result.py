#!/usr/bin/env python3
"""Validate a tm-bench experiment-result JSON document.

Usage: validate_result.py RESULT.json [--experiment NAME] [--expect-racecheck]
       [--forbid-network] [--expect-races N]

Checks the v1 schema shape of every cell, including the additive network
(`topology`/`aggregation`/`links`) and racecheck (`racecheck`/`races`)
fields.  Fails loudly: the first violation exits non-zero with a message
naming the offending field and cell.

  --experiment NAME   require doc["experiment"] == NAME
  --expect-racecheck  require every cell to carry racecheck=true and a
                      races array (the checked-and-race-free verdict is an
                      EMPTY array; a missing one means the cell never ran
                      under the detector)
  --expect-races N    require the total race count across cells to be
                      exactly N (use with the racy fixtures)
  --forbid-network    require no cell to mention the network subsystem
                      (ideal-topology documents)
"""

import argparse
import json
import sys

RACE_KINDS = ("read", "write")


def fail(msg):
    print(f"validate_result.py: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def require(cond, field, where, detail):
    if not cond:
        fail(f"field '{field}' in {where}: {detail}")


def validate_race(race, where):
    for field in ("page", "word_lo", "word_hi", "first_rank", "second_rank",
                  "first_interval", "second_interval"):
        require(field in race, field, where, "missing")
        require(isinstance(race[field], (int, float)) and race[field] >= 0,
                field, where, f"not a non-negative number: {race[field]!r}")
    for field in ("first_kind", "second_kind"):
        require(race.get(field) in RACE_KINDS, field, where,
                f"must be one of {RACE_KINDS}, got {race.get(field)!r}")
    require(race["word_lo"] <= race["word_hi"], "word_lo", where,
            "word_lo must not exceed word_hi")
    require(race["first_interval"] >= 1 and race["second_interval"] >= 1,
            "first_interval", where, "interval timestamps start at 1")


def validate_cell(cell, i, args):
    where = f"cells[{i}]"
    for field in ("app", "size", "policy", "nprocs", "seed", "schedule",
                  "diff_timing", "protocol", "exec_time_ns", "checksum",
                  "breakdown", "gc"):
        require(field in cell, field, where, "missing")

    require(cell["schedule"] in ("fifo", "seeded"), "schedule", where,
            f"unknown value {cell['schedule']!r}")
    require(cell["diff_timing"] in ("eager", "lazy"), "diff_timing", where,
            f"unknown value {cell['diff_timing']!r}")
    require(cell["protocol"] in ("multi-writer", "home-based",
                                 "home-based-first-touch"),
            "protocol", where, f"unknown value {cell['protocol']!r}")
    try:
        int(cell["seed"], 16)
    except (TypeError, ValueError):
        fail(f"field 'seed' in {where}: not a 64-bit hex string: "
             f"{cell['seed']!r}")
    require("host_wall_ns" not in cell, "host_wall_ns", where,
            "nondeterministic display-only field must not be emitted")

    b = cell["breakdown"]
    for field in ("useful_messages", "useless_messages", "useful_data",
                  "faults", "home_updates", "page_fetches"):
        require(field in b, f"breakdown.{field}", where, "missing")
        require(b[field] >= 0, f"breakdown.{field}", where, "negative")
    gc = cell["gc"]
    require(gc["intervals_retired"] <= gc["intervals_closed"],
            "gc.intervals_retired", where,
            "cannot exceed gc.intervals_closed")

    # Network fields are additive: present only on contended cells, and
    # then shaped by the topology.
    if args.forbid_network:
        for field in ("topology", "aggregation", "links"):
            require(field not in cell, field, where,
                    "ideal-topology documents must not mention the network")
    if "topology" in cell:
        require(cell["topology"] in ("bus", "switched"), "topology", where,
                f"unknown value {cell['topology']!r}")
        links = cell.get("links")
        require(isinstance(links, list) and links, "links", where,
                "contended cell must carry a non-empty links array")
        expected = 1 if cell["topology"] == "bus" else cell["nprocs"]
        require(len(links) == expected, "links", where,
                f"expected {expected} links for {cell['topology']}, "
                f"got {len(links)}")
        for link in links:
            require(link["busy_ns"] >= 0 and link["queue_ns"] >= 0,
                    "links.busy_ns", where, "negative")
            require(0.0 <= link["utilization"] <= 1.0, "links.utilization",
                    where, "must be a fraction in [0, 1]")
            # The occupancy window (emitted since the utilization fix)
            # bounds the disjoint busy intervals.
            if "window_ns" in link:
                require(link["busy_ns"] <= link["window_ns"],
                        "links.window_ns", where,
                        "busy_ns exceeds the occupancy window")

    # Racecheck fields are additive: absent by default, both present on a
    # checked cell.  races == [] is the explicit checked-and-race-free
    # verdict, so with --expect-racecheck a MISSING array is the failure.
    if args.expect_racecheck:
        require(cell.get("racecheck") is True, "racecheck", where,
                "cell was not run under --racecheck")
        require("races" in cell, "races", where,
                "checked cell must carry a races array (possibly empty)")
    if "racecheck" in cell:
        require(cell["racecheck"] is True, "racecheck", where,
                "emitted only when true")
    if "races" in cell:
        require(cell.get("racecheck") is True, "races", where,
                "races[] requires racecheck=true")
        require(isinstance(cell["races"], list), "races", where,
                "must be an array")
        for j, race in enumerate(cell["races"]):
            validate_race(race, f"{where}.races[{j}]")
    return len(cell.get("races", []))


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("result")
    ap.add_argument("--experiment")
    ap.add_argument("--expect-racecheck", action="store_true")
    ap.add_argument("--expect-races", type=int, default=None)
    ap.add_argument("--forbid-network", action="store_true")
    args = ap.parse_args()

    try:
        doc = json.load(open(args.result))
    except (OSError, json.JSONDecodeError) as e:
        fail(f"document '{args.result}': {e}")

    require(doc.get("schema") == "tm-bench/experiment-result/v1", "schema",
            "document", f"got {doc.get('schema')!r}")
    if args.experiment is not None:
        require(doc.get("experiment") == args.experiment, "experiment",
                "document", f"expected {args.experiment!r}, "
                f"got {doc.get('experiment')!r}")
    cells = doc.get("cells")
    require(isinstance(cells, list) and cells, "cells", "document",
            "must be a non-empty array")

    total_races = sum(validate_cell(c, i, args) for i, c in enumerate(cells))
    if args.expect_races is not None and total_races != args.expect_races:
        fail(f"field 'races' in document: expected {args.expect_races} race "
             f"records in total, found {total_races}")

    checked = sum(1 for c in cells if c.get("racecheck"))
    print(f"validate_result.py: OK: {len(cells)} cells "
          f"({checked} racechecked, {total_races} race records)")


if __name__ == "__main__":
    main()
